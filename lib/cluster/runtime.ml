module Stats = Commit_checker.Stats
module Export = Commit_checker.Export

type config = {
  protocol : Site.packed;
  n : int;
  t_unit : Vtime.t;
  mode : Network.mode;
  timeline : Partition.t;
  delay : Delay.t;
  seed : int64;
  duration : Vtime.t;
  drain : Vtime.t;
  load : int;
  window : int;
  queue_limit : int option;
  policy : Scheduler.policy;
  pause_during_cut : bool;
  crashes : (Site_id.t * Vtime.t) list;
  recoveries : (Site_id.t * Vtime.t) list;
      (* each site must also appear in [crashes] at an earlier instant;
         at the recovery instant the site replays its WAL and rejoins *)
  balance : int;
  amount : int;
  bucket : Vtime.t;
  trace_enabled : bool;
  snapshot_every : Vtime.t option;
      (* emit a windowed telemetry snapshot every this many ticks *)
  profile : bool;  (* attribute host wall-time to subsystem buckets *)
}

let default_config ?(protocol = (module Termination.Transient : Site.S))
    ?(n = 3) () =
  let t_unit = Vtime.of_int 1000 in
  let t mult = Vtime.of_int (mult * Vtime.to_int t_unit) in
  {
    protocol;
    n;
    t_unit;
    mode = Network.Optimistic;
    timeline = Partition.none;
    delay = Delay.uniform ~t_max:t_unit;
    seed = 1L;
    duration = t 200;
    drain = t 30;
    load = 50;
    window = 8;
    queue_limit = Some 64;
    policy = Scheduler.Partition_aware;
    pause_during_cut = false;
    crashes = [];
    recoveries = [];
    balance = 1000;
    amount = 25;
    bucket = t 10;
    trace_enabled = false;
    snapshot_every = None;
    profile = false;
  }

type report = {
  config : config;
  horizon : Vtime.t;
  offered : int;
  admitted : int;
  rejected : int;
  starved : int;
  committed : int;
  aborted : int;
  torn : int;
  blocked : int;
  settled : int;
  termination_invocations : int;
  probes : int;
  latency : Stats.t option;
  queue_wait : Stats.t option;
  throughput_per_100t : float;
  disk_total : int;
  auditor : Auditor.t;
  metrics : Metrics.t;
  net_stats : Network.stats;
  trace : Trace.t;
  trace_dropped : int;
      (* entries the bounded trace ring evicted; surfaced as a stderr
         warning by the CLI and in to_json's "runtime" section *)
  events_run : int;
      (* engine events executed (deterministic); in to_json's "runtime"
         section so snapshot streams can be cross-checked *)
  snapshots : Metrics.snapshot list;
      (* windowed telemetry, oldest first; empty unless
         [config.snapshot_every] *)
  profile : Prof.report option;
      (* wall-clock subsystem attribution; inherently nondeterministic,
         so never serialized in [to_json] *)
}

(* Protocol messages multiplexed by transaction id, as in Tm. *)
type wire = { wtid : int; body : Types.msg }

let pp_wire fmt w = Format.fprintf fmt "t%d:%a" w.wtid Types.pp_msg w.body

(* Binary wire codec (same layout as Tm's): wtid in bits 40+ above the
   packed message. *)
let wire_code w = Types.msg_code w.body lor (w.wtid lsl 40)

let wire_renderer =
  Network.register_payload_renderer (fun b code ->
      Buffer.add_char b 't';
      Buffer.add_string b (string_of_int (code lsr 40));
      Buffer.add_char b ':';
      Types.buf_msg_code b (code land ((1 lsl 40) - 1)))

let wire_codec = (wire_renderer, wire_code)

(* Cluster trace templates, registered at module init (the [Run] functor
   below is applied once per run).  Note the literal "site%d" wording —
   these are physical, not logical, site numbers. *)

let tmpl_torn =
  Trace.register_template (fun b _ tid _ _ _ _ ->
      Buffer.add_char b 't';
      Buffer.add_string b (string_of_int tid);
      Buffer.add_string b " TORN")

let tmpl_never_reached =
  Trace.register_template (fun b _ tid site _ _ _ ->
      Buffer.add_char b 't';
      Buffer.add_string b (string_of_int tid);
      Buffer.add_string b ": site";
      Buffer.add_string b (string_of_int site);
      Buffer.add_string b " never reached; local abort")

let tmpl_crashed =
  Trace.register_template (fun b _ site _ _ _ _ ->
      Buffer.add_string b "site";
      Buffer.add_string b (string_of_int site);
      Buffer.add_string b " CRASHED")

let tmpl_recovered =
  Trace.register_template (fun b _ site redone in_doubt aborted _ ->
      Buffer.add_string b "site";
      Buffer.add_string b (string_of_int site);
      Buffer.add_string b " RECOVERED redo=";
      Buffer.add_string b (string_of_int redone);
      Buffer.add_string b " in-doubt=";
      Buffer.add_string b (string_of_int in_doubt);
      Buffer.add_string b " aborted=";
      Buffer.add_string b (string_of_int aborted))

let tmpl_adopted =
  Trace.register_template (fun b _ tid site commit _ _ ->
      Buffer.add_char b 't';
      Buffer.add_string b (string_of_int tid);
      Buffer.add_string b ": site";
      Buffer.add_string b (string_of_int site);
      Buffer.add_string b " in doubt; adopts ";
      Buffer.add_string b (if commit = 1 then "commit" else "abort"))

(* Per-domain reusable state for cluster sweeps: one engine whose heap
   array survives (reset, not reallocated) across runtimes.  The trace
   store is not part of the scratch — each run gets a fresh one so
   [report.trace] never aliases a later run's data. *)
type scratch = { scratch_engine : Engine.t }

let make_scratch () =
  { scratch_engine = Engine.create ~trace:(Trace.create ~enabled:false ()) () }

(* Decision reasons that only the termination machinery (or a timeout /
   UD transition standing in for it) can produce; the failure-free flow
   decides through fact1-case1 / fact2-case1 / plain command receipt. *)
let termination_reason =
  let tagged =
    List.filter (fun r -> r <> "fact1-case1") Termination.fact1_reasons
    @ List.filter (fun r -> r <> "fact2-case1") Termination.fact2_reasons
    @ [
        "transient-5t-commit";
        "collect-abort";
        "w2-expired";
        "ud-yes";
        "ud-xact";
        "w1-timeout";
        (* Paxos Commit: a decision chosen at a ballot > 0 means a
           replacement leader drove the instances home — the consensus
           counterpart of a termination-protocol invocation. *)
        "px-chosen-recovery";
      ]
  in
  fun r -> List.mem r tagged

module Run (P : Site.S) = struct
  type txn_rt = {
    spec : Tm.txn_spec;
    master : Site_id.t;
    admitted_at : Vtime.t;
    mutable instances : P.t array;
    decisions : Types.decision option array;
    fenced : bool array;
        (* a fenced site's protocol instance is a ghost: its volatile
           state predates a crash (or the site was down when the
           transaction was admitted), so it may neither send, receive,
           nor decide — the recovery rule decides for it *)
    awaiting : bool array;
        (* recovered in-doubt sites waiting to adopt the group's first
           decision *)
    mutable terminated : bool;
    mutable settled : bool;
  }

  type state = {
    config : config;
    engine : Engine.t;
    trace_store : Trace.t;
    tracing : bool;
    topic_cluster : Trace.topic;
    obs : Obs.t;
    obs_on : bool;  (* cached Obs.enabled *)
    net : wire Network.t;
    stores : Durable_site.t array;
    scheduler : Tm.txn_spec Scheduler.t;
    txns : (int, txn_rt) Hashtbl.t;
    metrics : Metrics.t;
    auditor : Auditor.t;
    dead : bool array;  (* crash-stopped sites, index = physical - 1 *)
    horizon : Vtime.t;
    prof : Prof.t option;  (* Some only when [config.profile] *)
  }

  (* Profiler brackets; no-ops (no closure, no allocation) when
     profiling is off. *)
  let prof_enter state b =
    match state.prof with Some p -> Prof.enter p b | None -> ()

  let prof_leave state =
    match state.prof with Some p -> Prof.leave p | None -> ()

  let store state site = state.stores.(Site_id.to_int site - 1)

  let now state = Engine.now state.engine

  (* Call sites guard with [state.tracing]. *)
  let log1 state tmpl a0 =
    Trace.log1 state.trace_store ~at:(now state) ~topic:state.topic_cluster
      tmpl a0

  let log2 state tmpl a0 a1 =
    Trace.log2 state.trace_store ~at:(now state) ~topic:state.topic_cluster
      tmpl a0 a1

  let log3 state tmpl a0 a1 a2 =
    Trace.log3 state.trace_store ~at:(now state) ~topic:state.topic_cluster
      tmpl a0 a1 a2

  let log4 state tmpl a0 a1 a2 a3 =
    Trace.log4 state.trace_store ~at:(now state) ~topic:state.topic_cluster
      tmpl a0 a1 a2 a3

  (* Per-transaction master relabeling: the protocol stack hard-wires
     "site 1 masters", so a transaction coordinated by physical site m
     sees logical ids rotated to put m at 1.  The bijection keeps
     self-sends impossible and the wire purely physical. *)
  let logical_of ~n ~master phys =
    Site_id.of_int (((Site_id.to_int phys - Site_id.to_int master + n) mod n) + 1)

  let physical_of ~n ~master logical =
    Site_id.of_int
      (((Site_id.to_int logical - 1 + (Site_id.to_int master - 1)) mod n) + 1)

  (* Admission-to-settlement lifecycle on track 0: [queued] (if the
     scheduler deferred it) then the root admission span. *)
  let obs_seal_track state tid =
    let at = now state in
    while Obs.open_depth state.obs ~site:0 ~tid > 0 do
      Obs.span_end state.obs ~at ~site:0 ~tid
    done

  (* Settlement is judged over live sites only: a crash-stopped site
     never decides and is nobody's fault. *)
  let live_complete state rt =
    let ok = ref true in
    Array.iteri
      (fun i d -> if (not state.dead.(i)) && d = None then ok := false)
      rt.decisions;
    !ok

  let rec settle state rt =
    rt.settled <- true;
    if state.obs_on then obs_seal_track state rt.spec.Tm.tid;
    let at = now state in
    let m = state.metrics in
    let all d =
      let any = ref false and ok = ref true in
      Array.iteri
        (fun i d' ->
          if not state.dead.(i) then
            match d' with
            | Some x when Types.equal_decision x d -> any := true
            | Some _ | None -> ok := false)
        rt.decisions;
      !any && !ok
    in
    (if all Types.Commit then begin
       Metrics.incr m "txn.committed";
       Metrics.mark m ~at "commits";
       Metrics.observe m "latency.commit" (Vtime.sub at rt.admitted_at)
     end
     else if all Types.Abort then begin
       Metrics.incr m "txn.aborted";
       Metrics.mark m ~at "aborts"
     end
     else begin
       Metrics.incr m "txn.torn";
       if state.tracing then log1 state tmpl_torn rt.spec.tid
     end);
    Metrics.incr m "txn.settled";
    Metrics.observe m "latency.settle" (Vtime.sub at rt.admitted_at);
    if rt.terminated then begin
      Metrics.incr m "txn.termination";
      Metrics.mark m ~at "terminations"
    end;
    Scheduler.complete state.scheduler;
    pump state

  and apply_decision state rt phys_index decision ~durable =
    rt.decisions.(phys_index) <- Some decision;
    let site = Site_id.of_int (phys_index + 1) in
    (if durable then
       let d = store state site in
       match decision with
       | Types.Commit -> Durable_site.commit d ~tid:rt.spec.tid ()
       | Types.Abort -> Durable_site.abort d ~tid:rt.spec.tid);
    prof_enter state Prof.Auditor;
    Auditor.record state.auditor ~tid:rt.spec.tid ~site decision;
    prof_leave state;
    (* Recovered in-doubt sites adopt the group's first decision;
       all-or-nothing agreement makes "first" equal "the" group
       decision. *)
    Array.iteri
      (fun j waiting ->
        if waiting && rt.decisions.(j) = None && not state.dead.(j) then begin
          rt.awaiting.(j) <- false;
          adopt state rt j decision
        end)
      rt.awaiting;
    if (not rt.settled) && live_complete state rt then settle state rt

  and adopt state rt phys_index decision =
    (* Group-decision adoption after a restart.  The durable work
       depends on how far this site got before the crash: [`Prepared]
       means the forced Stage record re-staged the updates and a plain
       durable decision finishes the job.  [`Active] means the site
       crashed between its vote and the forced prepare — yet the group
       may have committed over the survivors, so a commit must re-stage
       the spec's writes before it moves the money (an abort just logs).
       [`Unknown] means the transaction was admitted during the outage;
       a group commit still binds this site, so begin, stage and commit
       durably, while an abort needs no WAL record at all.  Any other
       status means the replay already wrote the local outcome and only
       the auditor needs the decision. *)
    let site = Site_id.of_int (phys_index + 1) in
    let d = store state site in
    let tid = rt.spec.Tm.tid in
    let durable =
      match (Durable_site.status d ~tid, decision) with
      | `Prepared, _ | `Active, Types.Abort -> true
      | (`Active | `Unknown), Types.Commit ->
          let writes =
            match List.assoc_opt site rt.spec.Tm.writes with
            | Some updates -> updates
            | None -> []
          in
          if Durable_site.status d ~tid = `Unknown then
            Durable_site.begin_transaction d ~tid;
          Durable_site.stage d ~tid writes;
          true
      | `Unknown, Types.Abort -> false
      | (`Committed | `Aborted | `Ended), _ -> false
    in
    if state.tracing then
      log3 state tmpl_adopted rt.spec.tid (phys_index + 1)
        (match decision with Types.Commit -> 1 | Types.Abort -> 0);
    apply_decision state rt phys_index decision ~durable

  and record_decision state rt phys_index decision =
    (* A crash-stopped site's local timers can still fire and "decide"
       in its isolated ghost state, and after a recovery the pre-crash
       instance is a fenced ghost whose volatile state was lost; nothing
       either does may reach the durable store or the auditor. *)
    if (not state.dead.(phys_index))
       && (not rt.fenced.(phys_index))
       && rt.decisions.(phys_index) = None
    then apply_decision state rt phys_index decision ~durable:true

  and start state spec master =
    let n = state.config.n in
    let at = now state in
    if state.obs_on then begin
      let tid = spec.Tm.tid in
      if Obs.open_depth state.obs ~site:0 ~tid > 0 then
        Obs.span_end state.obs ~at ~site:0 ~tid;  (* queued *)
      Obs.span_begin state.obs ~at ~site:0 ~tid ~cat:"txn" "txn"
    end;
    Metrics.mark state.metrics ~at "admissions";
    Metrics.observe state.metrics "wait.queue" (Vtime.sub at spec.Tm.start_at);
    prof_enter state Prof.Auditor;
    Auditor.begin_txn state.auditor ~tid:spec.Tm.tid
      ~contributions:(Workload.transfer_contributions spec);
    prof_leave state;
    let rt =
      {
        spec;
        master;
        admitted_at = at;
        instances = [||];
        decisions = Array.make n None;
        (* A site that is down at admission never sees the transaction:
           no durable begin, and its instance is born fenced. *)
        fenced = Array.init n (fun i -> state.dead.(i));
        awaiting = Array.make n false;
        terminated = false;
        settled = false;
      }
    in
    Hashtbl.add state.txns spec.Tm.tid rt;
    let writes_of site =
      match List.assoc_opt site spec.Tm.writes with
      | Some updates -> updates
      | None -> []
    in
    let instances =
      Array.init n (fun i ->
          let phys = Site_id.of_int (i + 1) in
          if not state.dead.(i) then begin
            let durable = store state phys in
            Durable_site.begin_transaction durable ~tid:spec.Tm.tid;
            Durable_site.stage durable ~tid:spec.Tm.tid (writes_of phys)
          end;
          let self = logical_of ~n ~master phys in
          let ctx =
            Ctx.make ~engine:state.engine ~n ~t_unit:state.config.t_unit ~self
              ~trans_id:spec.Tm.tid
              ~send:(fun dst body ->
                if not rt.fenced.(i) then
                  Network.send state.net ~src:phys
                    ~dst:(physical_of ~n ~master dst)
                    { wtid = spec.Tm.tid; body })
              ~on_decide:(fun decision -> record_decision state rt i decision)
              ~on_reason:(fun r ->
                Metrics.incr state.metrics ("reason." ^ r);
                if termination_reason r then rt.terminated <- true)
              ~obs:state.obs
              ~obs_site:(Site_id.to_int phys) ()
          in
          let role =
            if Site_id.is_master self then Site.Master_role
            else Site.Slave_role { vote_yes = true }
          in
          P.create ctx role)
    in
    rt.instances <- instances;
    (* Same guard as Tm: a site cut off before the transaction reaches
       it sits in its initial state forever; abort it locally well past
       any legitimate quiet period. *)
    Array.iteri
      (fun i instance ->
        ignore
          (Engine.schedule state.engine ~rank:Engine.Timer
             ~delay:(Vtime.of_int (12 * Vtime.to_int state.config.t_unit))
             ~label:(Label.Static "q-watchdog")
             (fun () ->
               let initial =
                 match P.state_name instance with
                 | "q" | "q1" -> true
                 | _ -> false
               in
               if rt.decisions.(i) = None && initial then begin
                 if state.tracing then
                   log2 state tmpl_never_reached rt.spec.tid (i + 1);
                 record_decision state rt i Types.Abort
               end)))
      instances;
    P.begin_transaction instances.(Site_id.to_int master - 1)

  and pump state =
    let alive s = not state.dead.(Site_id.to_int s - 1) in
    let rec drain () =
      match
        Scheduler.next state.scheduler ~alive ~timeline:state.config.timeline
          ~now:(now state) ()
      with
      | Some (spec, master) ->
          start state spec master;
          drain ()
      | None -> ()
    in
    drain ()

  let submit state spec =
    let at = now state in
    Metrics.incr state.metrics "txn.offered";
    Metrics.mark state.metrics ~at "arrivals";
    match
      Scheduler.submit state.scheduler
        ~alive:(fun s -> not state.dead.(Site_id.to_int s - 1))
        ~timeline:state.config.timeline ~now:at spec
    with
    | `Admit master -> start state spec master
    | `Enqueued ->
        if state.obs_on then
          Obs.span_begin state.obs ~at ~site:0 ~tid:spec.Tm.tid
            ~cat:"lifecycle" "queued"
    | `Rejected ->
        if state.obs_on then
          Obs.instant state.obs ~at ~site:0 ~tid:spec.Tm.tid ~cat:"lifecycle"
            "rejected";
        Metrics.incr state.metrics "txn.rejected";
        Metrics.mark state.metrics ~at "rejections"

  let run ~obs ~scratch config =
    if config.load < 1 then invalid_arg "Runtime.run: load must be >= 1";
    if config.window < 1 then invalid_arg "Runtime.run: window must be >= 1";
    if config.amount <= 0 || config.amount >= config.balance then
      invalid_arg "Runtime.run: need 0 < amount < balance";
    if config.n < 2 then invalid_arg "Runtime.run: need at least two sites";
    (match config.snapshot_every with
    | Some every when Vtime.to_int every <= 0 ->
        invalid_arg "Runtime.run: snapshot_every must be positive"
    | Some _ | None -> ());
    List.iter
      (fun (site, _) ->
        if Site_id.to_int site > config.n then
          invalid_arg
            (Printf.sprintf "Runtime.run: crash site %d out of range (n=%d)"
               (Site_id.to_int site) config.n))
      config.crashes;
    List.iter
      (fun (site, at) ->
        if Site_id.to_int site > config.n then
          invalid_arg
            (Printf.sprintf "Runtime.run: recovery site %d out of range (n=%d)"
               (Site_id.to_int site) config.n);
        if
          not
            (List.exists
               (fun (s, c) -> Site_id.equal s site && Vtime.( < ) c at)
               config.crashes)
        then
          invalid_arg
            (Printf.sprintf
               "Runtime.run: recovery for site %d has no earlier crash"
               (Site_id.to_int site)))
      config.recoveries;
    let trace_store = Trace.create ~enabled:config.trace_enabled () in
    let engine =
      match scratch with
      | Some s ->
          Engine.reset ~trace:trace_store s.scratch_engine;
          s.scratch_engine
      | None -> Engine.create ~trace:trace_store ()
    in
    let prof = if config.profile then Some (Prof.create ()) else None in
    let net =
      Network.create ~engine ~n:config.n ~t_max:config.t_unit ~mode:config.mode
        ~partition:config.timeline ~delay:config.delay ~seed:config.seed
        ~pp_payload:pp_wire ~payload_codec:wire_codec ~obs
        ~obs_tid:(fun w -> w.wtid)
        ?prof ()
    in
    let metrics = Metrics.create ~bucket:config.bucket ~t_unit:config.t_unit () in
    (* The snapshot cursor must exist before anything records. *)
    let cursor = Option.map (fun _ -> Metrics.create_cursor metrics) config.snapshot_every in
    let horizon = Vtime.add config.duration config.drain in
    let state =
      {
        config;
        engine;
        trace_store;
        tracing = Trace.enabled trace_store;
        topic_cluster = Trace.topic trace_store "cluster";
        obs;
        obs_on = Obs.enabled obs;
        net;
        stores = Array.init config.n (fun _ -> Durable_site.create ());
        scheduler =
          Scheduler.create ~policy:config.policy
            ?queue_limit:config.queue_limit
            ~pause_during_cut:config.pause_during_cut ~window:config.window
            ~n:config.n ();
        txns = Hashtbl.create 256;
        metrics;
        auditor = Auditor.create ~n:config.n ();
        dead = Array.make config.n false;
        horizon;
        prof;
      }
    in
    (* Streaming telemetry: the span->histogram bridge drains closed
       Obs spans into "span.<cat>.<name>" histograms (it only exists
       when the recorder does, so trace-off runs pay nothing); gauges
       are sampled at every cut and once at the horizon. *)
    let bridge = if Obs.enabled obs then Some (Span_bridge.create obs) else None in
    let flush_bridge () =
      match bridge with Some b -> Span_bridge.flush b metrics | None -> ()
    in
    let sample_gauges ~at =
      Metrics.set_gauge metrics "gauge.in_flight"
        (Scheduler.in_flight state.scheduler);
      Metrics.set_gauge metrics "gauge.queued" (Scheduler.queued state.scheduler);
      (* Same bound as the q-watchdog: admitted 12T ago and still not
         settled means the commit protocol is blocked or terminating. *)
      let stall = Vtime.of_int (12 * Vtime.to_int config.t_unit) in
      let blocked =
        Hashtbl.fold
          (fun _ rt n ->
            if (not rt.settled) && Vtime.( < ) (Vtime.add rt.admitted_at stall) at
            then n + 1
            else n)
          state.txns 0
      in
      Metrics.set_gauge metrics "gauge.blocked" blocked;
      Metrics.set_gauge metrics "gauge.live_sites"
        (Array.fold_left (fun n dead -> if dead then n else n + 1) 0 state.dead);
      (* Down now, but scheduled to come back: the sites a soak is
         actively waiting on. *)
      Metrics.set_gauge metrics "gauge.recovering_sites"
        (List.fold_left
           (fun n (site, _) ->
             if state.dead.(Site_id.to_int site - 1) then n + 1 else n)
           0 config.recoveries);
      Metrics.set_gauge metrics "gauge.partition_components"
        (Partition.components_at config.timeline ~at)
    in
    let snapshots = ref [] in
    let cut ~at ~final =
      match cursor with
      | None -> ()
      | Some c ->
          sample_gauges ~at;
          flush_bridge ();
          snapshots := Metrics.snapshot metrics c ~at ~final :: !snapshots
    in
    (* Periodic cuts ride the engine at Background rank, so same-instant
       deliveries and timers land inside the window they belong to; the
       horizon cut is taken separately, after shutdown accounting. *)
    (match config.snapshot_every with
    | None -> ()
    | Some every ->
        let rec tick at =
          ignore
            (Engine.schedule_at engine ~rank:Engine.Background ~at
               ~label:(Label.Static "metrics-cut")
               (fun () ->
                 cut ~at ~final:false;
                 let next = Vtime.add at every in
                 if Vtime.( < ) next horizon then tick next))
        in
        if Vtime.( < ) every horizon then tick every);
    (* Crash-stop timeline: silence the site on the wire, release the
       auditor and any in-flight transactions that are now complete over
       the survivors, and keep the site out of master rotation. *)
    List.iter
      (fun (site, at) ->
        ignore
          (Engine.schedule_at engine ~at ~label:(Label.Static "crash")
             (fun () ->
               let i = Site_id.to_int site - 1 in
               if not state.dead.(i) then begin
                 state.dead.(i) <- true;
                 Network.crash state.net site;
                 Metrics.incr metrics "site.crashes";
                 (* Volatile state dies with the site; the WAL (and the
                    Stage records it carries for prepared transactions)
                    is what a later recovery replays. *)
                 Durable_site.crash (store state site);
                 if state.tracing then log1 state tmpl_crashed (i + 1);
                 Auditor.mark_dead state.auditor ~site;
                 let stranded =
                   Hashtbl.fold
                     (fun _ rt acc ->
                       if (not rt.settled) && live_complete state rt then
                         rt :: acc
                       else acc)
                     state.txns []
                   |> List.sort (fun a b ->
                          Int.compare a.spec.Tm.tid b.spec.Tm.tid)
                 in
                 List.iter
                   (fun rt -> if not rt.settled then settle state rt)
                   stranded
               end)))
      config.crashes;
    (* Crash-recover timeline: at the UP instant the site replays its
       WAL, applies the paper's recovery rule to every transaction it
       was fenced out of, and rejoins scheduling, settlement and the
       auditor. *)
    List.iter
      (fun (site, at) ->
        ignore
          (Engine.schedule_at engine ~at ~label:(Label.Static "recover")
             (fun () ->
               let i = Site_id.to_int site - 1 in
               if state.dead.(i) then begin
                 (* Every instance alive right now predates the restart:
                    all are ghosts (their volatile state died with the
                    crash) and stay fenced forever — the recovery rule
                    below speaks for this site instead. *)
                 Hashtbl.iter (fun _ rt -> rt.fenced.(i) <- true) state.txns;
                 state.dead.(i) <- false;
                 Network.recover state.net site;
                 Auditor.mark_recovered state.auditor ~site;
                 Metrics.incr metrics "site.recoveries";
                 let durable = store state site in
                 (* The group outranks the local WAL.  Termination can
                    commit a transaction whose crashed participant had
                    voted yes but not yet forced its prepare record, so
                    a unilateral replay-abort of an active transaction
                    could diverge from a group commit.  Keep every
                    active transaction the group has not decided open
                    across the replay; afterwards resolve each open
                    transaction against the group's first recorded
                    decision — adopt it, or wait for one. *)
                 let open_txns =
                   Hashtbl.fold
                     (fun _ rt acc ->
                       if rt.decisions.(i) = None then rt :: acc else acc)
                     state.txns []
                   |> List.sort (fun a b ->
                          Int.compare a.spec.Tm.tid b.spec.Tm.tid)
                 in
                 let undecided =
                   List.filter_map
                     (fun rt ->
                       if Durable_site.status durable ~tid:rt.spec.Tm.tid
                          = `Active
                       then Some rt.spec.Tm.tid
                       else None)
                     open_txns
                 in
                 let rep = Durable_site.recover ~undecided durable in
                 Metrics.add metrics "recovery.redone" (List.length rep.redone);
                 Metrics.add metrics "recovery.in_doubt"
                   (List.length rep.in_doubt);
                 Metrics.add metrics "recovery.aborted"
                   (List.length rep.aborted);
                 if state.tracing then
                   log4 state tmpl_recovered (i + 1) (List.length rep.redone)
                     (List.length rep.in_doubt)
                     (List.length rep.aborted);
                 (* Anything the replay still aborted unilaterally (an
                    active transaction the runtime no longer tracks) is
                    already logged; the auditor just needs to hear it. *)
                 List.iter
                   (fun tid ->
                     match Hashtbl.find_opt state.txns tid with
                     | Some rt when rt.decisions.(i) = None ->
                         apply_decision state rt i Types.Abort ~durable:false
                     | Some _ | None -> ())
                   rep.aborted;
                 List.iter
                   (fun rt ->
                     if rt.decisions.(i) = None then
                       let group_decision =
                         Array.fold_left
                           (fun acc d ->
                             match acc with Some _ -> acc | None -> d)
                           None rt.decisions
                       in
                       match Recovery.resolve ~group_decision with
                       | Recovery.Adopt d -> adopt state rt i d
                       | Recovery.Wait -> rt.awaiting.(i) <- true)
                   open_txns;
                 (* The scheduler sees the site again on the next pump;
                    do one now so admission resumes promptly. *)
                 pump state
               end)))
      config.recoveries;
    (* Count termination-protocol probes directly off the wire. *)
    Network.set_tap net (fun event ->
        match event with
        | Network.Sent { env; _ } -> (
            match env.payload.body with
            | Types.Probe _ -> Metrics.incr metrics "net.probes"
            | _ -> ())
        | Network.Delivered _ | Network.Bounced _ | Network.Lost _ -> ());
    Network.set_handler net (fun phys delivery ->
        let wtid =
          match delivery with
          | Network.Msg e | Network.Undeliverable e -> e.payload.wtid
        in
        match Hashtbl.find_opt state.txns wtid with
        | None -> ()
        | Some rt ->
            let n = config.n in
            let relabel (e : wire Network.envelope) =
              {
                Network.src = logical_of ~n ~master:rt.master e.src;
                dst = logical_of ~n ~master:rt.master e.dst;
                payload = e.payload.body;
                sent_at = e.sent_at;
              }
            in
            let unwrapped =
              match delivery with
              | Network.Msg e -> Network.Msg (relabel e)
              | Network.Undeliverable e -> Network.Undeliverable (relabel e)
            in
            let i = Site_id.to_int phys - 1 in
            (* A fenced instance lost its volatile state in a crash;
               deliveries that outlived the outage must not wake it. *)
            if not rt.fenced.(i) then begin
              let instance = rt.instances.(i) in
              prof_enter state Prof.Protocol;
              P.on_delivery instance unwrapped;
              (* Reaching the prepared state must survive a restart. *)
              (match P.state_name instance with
              | "p" | "p1" ->
                  let durable = store state phys in
                  if Durable_site.status durable ~tid:wtid = `Active then
                    Durable_site.prepare durable ~tid:wtid
              | _ -> ());
              prof_leave state
            end);
    (* The open-loop arrival process: [load] transfers per 100T, evenly
       spaced, sites drawn from a seed-derived stream. *)
    let wl_rng = Rng.create (Int64.logxor config.seed 0x9E3779B97F4A7C15L) in
    let spacing_num = 100 * Vtime.to_int config.t_unit in
    let offered = ref 0 in
    let rec schedule_arrival i =
      let at = Vtime.of_int (i * spacing_num / config.load) in
      if Vtime.( < ) at config.duration then begin
        incr offered;
        ignore
          (Engine.schedule_at engine ~at ~label:(Label.Static "arrival") (fun () ->
               let tid = i + 1 in
               let debtor =
                 Site_id.of_int (Rng.int_in wl_rng ~lo:1 ~hi:config.n)
               in
               let creditor =
                 let rec pick () =
                   let s = Site_id.of_int (Rng.int_in wl_rng ~lo:1 ~hi:config.n) in
                   if Site_id.equal s debtor then pick () else s
                 in
                 pick ()
               in
               let spec =
                 Workload.transfer ~tid ~start_at:(now state) ~debtor ~creditor
                   ~balance:config.balance ~amount:config.amount
               in
               submit state spec));
        schedule_arrival (i + 1)
      end
    in
    schedule_arrival 0;
    (* A once-per-T pump so queued arrivals drain on window slots and on
       heals even when no completion fires. *)
    let rec pump_loop () =
      pump state;
      let next = Vtime.add (now state) config.t_unit in
      if Vtime.( <= ) next horizon then
        ignore
          (Engine.schedule_at engine ~at:next ~label:(Label.Static "pump") (fun () ->
               pump_loop ()))
    in
    ignore
      (Engine.schedule_at engine ~at:config.t_unit ~label:(Label.Static "pump") (fun () ->
           pump_loop ()));
    Engine.run ~until:horizon engine;
    Obs.close_open_spans obs ~at:(Engine.now engine);
    (* Shutdown accounting. *)
    let blocked = ref 0 in
    Hashtbl.iter
      (fun _ rt -> if not rt.settled then incr blocked)
      state.txns;
    Metrics.add metrics "txn.blocked" !blocked;
    let starved = Scheduler.queued state.scheduler in
    Metrics.add metrics "txn.starved" starved;
    (* Final telemetry: drain the bridge and sample end-of-run gauges
       whether or not snapshots are on (so --json always carries them),
       then take the horizon cut after the shutdown accounting above so
       the stream's sum equals the final metrics exactly. *)
    sample_gauges ~at:horizon;
    flush_bridge ();
    (match cursor with
    | None -> ()
    | Some c ->
        snapshots := Metrics.snapshot metrics c ~at:horizon ~final:true :: !snapshots);
    (match prof with
    | Some p -> Prof.note_entries p Prof.Engine (Engine.events_run engine)
    | None -> ());
    let disk_total =
      Array.fold_left
        (fun acc durable ->
          List.fold_left
            (fun acc (key, value) ->
              if String.length key >= 5 && String.sub key 0 5 = "acct:" then
                acc + int_of_string value
              else acc)
            acc
            (Kv.snapshot (Durable_site.database durable)))
        0 state.stores
    in
    let committed = Metrics.counter metrics "txn.committed" in
    {
      config;
      horizon;
      offered = !offered;
      admitted = Scheduler.admitted state.scheduler;
      rejected = Scheduler.rejected state.scheduler;
      starved;
      committed;
      aborted = Metrics.counter metrics "txn.aborted";
      torn = Metrics.counter metrics "txn.torn";
      blocked = !blocked;
      settled = Metrics.counter metrics "txn.settled";
      termination_invocations = Metrics.counter metrics "txn.termination";
      probes = Metrics.counter metrics "net.probes";
      latency = Metrics.histogram metrics "latency.commit";
      queue_wait = Metrics.histogram metrics "wait.queue";
      throughput_per_100t =
        (if Vtime.to_int config.duration = 0 then 0.
         else
           float_of_int committed
           *. float_of_int spacing_num
           /. float_of_int (Vtime.to_int config.duration));
      disk_total;
      auditor = state.auditor;
      metrics;
      net_stats = Network.stats net;
      trace = trace_store;
      trace_dropped = Trace.dropped trace_store;
      events_run = Engine.events_run engine;
      snapshots = List.rev !snapshots;
      profile = Option.map Prof.report prof;
    }
end

let run ?(obs = Obs.disabled) ?scratch config =
  let (module P : Site.S) = config.protocol in
  let module R = Run (P) in
  R.run ~obs ~scratch config

let atomic report =
  Auditor.agreement_violations report.auditor = 0
  && Auditor.conservation_breaches report.auditor = 0
  && report.disk_total = Auditor.applied_total report.auditor

let to_json report =
  let (module P : Site.S) = report.config.protocol in
  let stats_json = function
    | Some s -> Export.of_stats s
    | None -> Export.Null
  in
  Export.Obj
    [
      ( "config",
        Export.Obj
          [
            ("protocol", Export.String P.name);
            ("n", Export.Int report.config.n);
            ("t_unit", Export.Int (Vtime.to_int report.config.t_unit));
            ("seed", Export.String (Int64.to_string report.config.seed));
            ("duration", Export.Int (Vtime.to_int report.config.duration));
            ("drain", Export.Int (Vtime.to_int report.config.drain));
            ("load_per_100t", Export.Int report.config.load);
            ("window", Export.Int report.config.window);
            ( "queue_limit",
              match report.config.queue_limit with
              | Some l -> Export.Int l
              | None -> Export.Null );
            ( "policy",
              Export.String (Scheduler.policy_name report.config.policy) );
            ("pause_during_cut", Export.Bool report.config.pause_during_cut);
            ( "timeline",
              Export.String
                (Format.asprintf "%a" Partition.pp report.config.timeline) );
            ( "crashes",
              Export.List
                (List.map
                   (fun (s, at) ->
                     Export.Obj
                       [
                         ("site", Export.Int (Site_id.to_int s));
                         ("at", Export.Int (Vtime.to_int at));
                       ])
                   report.config.crashes) );
            ( "recoveries",
              Export.List
                (List.map
                   (fun (s, at) ->
                     Export.Obj
                       [
                         ("site", Export.Int (Site_id.to_int s));
                         ("at", Export.Int (Vtime.to_int at));
                       ])
                   report.config.recoveries) );
          ] );
      ( "totals",
        Export.Obj
          [
            ("offered", Export.Int report.offered);
            ("admitted", Export.Int report.admitted);
            ("rejected", Export.Int report.rejected);
            ("starved", Export.Int report.starved);
            ("settled", Export.Int report.settled);
            ("committed", Export.Int report.committed);
            ("aborted", Export.Int report.aborted);
            ("torn", Export.Int report.torn);
            ("blocked", Export.Int report.blocked);
            ( "termination_invocations",
              Export.Int report.termination_invocations );
            ("probes", Export.Int report.probes);
          ] );
      ("throughput_per_100t", Export.Float report.throughput_per_100t);
      ("latency_commit", stats_json report.latency);
      ("queue_wait", stats_json report.queue_wait);
      ( "money",
        Export.Obj
          [
            ("disk_total", Export.Int report.disk_total);
            ( "applied_total",
              Export.Int (Auditor.applied_total report.auditor) );
            ( "atomic_expected_total",
              Export.Int (Auditor.atomic_expected_total report.auditor) );
          ] );
      ("atomic", Export.Bool (atomic report));
      ("auditor", Auditor.to_json report.auditor);
      ( "net",
        Export.Obj
          [
            ("sent", Export.Int report.net_stats.sent);
            ("delivered", Export.Int report.net_stats.delivered);
            ("bounced", Export.Int report.net_stats.bounced);
            ("lost", Export.Int report.net_stats.lost);
          ] );
      (* Deterministic runtime bookkeeping, so snapshot streams can be
         cross-checked against the run.  The wall-clock profile is
         deliberately absent: it would break byte-identity. *)
      ( "runtime",
        Export.Obj
          [
            ("events_run", Export.Int report.events_run);
            ("trace_dropped", Export.Int report.trace_dropped);
          ] );
      ("metrics", Metrics.to_json report.metrics);
    ]

let pp_report fmt report =
  let (module P : Site.S) = report.config.protocol in
  Format.fprintf fmt
    "cluster %s n=%d: offered=%d admitted=%d rejected=%d starved=%d@."
    P.name report.config.n report.offered report.admitted report.rejected
    report.starved;
  Format.fprintf fmt
    "  committed=%d aborted=%d torn=%d blocked=%d terminations=%d probes=%d@."
    report.committed report.aborted report.torn report.blocked
    report.termination_invocations report.probes;
  Format.fprintf fmt "  throughput=%.1f committed/100T@."
    report.throughput_per_100t;
  (match report.latency with
  | Some s ->
      Format.fprintf fmt "  commit latency: %a@."
        (Stats.pp_in_t ~unit_t:report.config.t_unit)
        s
  | None -> ());
  Format.fprintf fmt "  money: disk=%d applied=%d atomic-expected=%d %s@."
    report.disk_total
    (Auditor.applied_total report.auditor)
    (Auditor.atomic_expected_total report.auditor)
    (if atomic report then "(conserved)" else "(VIOLATED)")

let pp_timeline fmt report =
  let m = report.metrics in
  let bucket = Vtime.to_int (Metrics.bucket_ticks m) in
  let unit_t = Vtime.to_int report.config.t_unit in
  let last_bucket = (Vtime.to_int report.horizon - 1) / bucket in
  let count series b =
    match List.assoc_opt b (Metrics.series m series) with
    | Some c -> c
    | None -> 0
  in
  Format.fprintf fmt "  %-12s %-9s %-9s %-9s %-13s@." "interval" "arrivals"
    "commits" "aborts" "terminations";
  for b = 0 to last_bucket do
    let lo = b * bucket and hi = (b + 1) * bucket in
    let mid = Vtime.of_int (lo + (bucket / 2)) in
    Format.fprintf fmt "  %4dT-%4dT  %-9d %-9d %-9d %-13d%s@." (lo / unit_t)
      (hi / unit_t) (count "arrivals" b) (count "commits" b)
      (count "aborts" b) (count "terminations" b)
      (if Partition.active_at report.config.timeline mid then
         "  | partition up"
       else "")
  done
