module Export = Commit_checker.Export

type config = {
  base : Runtime.config;
  seed : int64;
  epochs : int;
  segment : Vtime.t;
  faults : bool;
}

let default_config ?(base = Runtime.default_config ()) () =
  {
    base;
    seed = 1L;
    epochs = 16;
    segment = Vtime.of_int (200 * Vtime.to_int base.Runtime.t_unit);
    faults = true;
  }

(* One epoch's fault schedule, derived from the soak seed and the epoch
   index alone.  Every draw is made unconditionally — the workload seed
   is the FIRST draw, so a faults-on and a faults-off soak over the same
   soak seed run identical arrival processes and differ only in the
   injected schedule. *)
type plan = {
  workload_seed : int64;
  timeline : Partition.t;
  crashes : (Site_id.t * Vtime.t) list;
  recoveries : (Site_id.t * Vtime.t) list;
  delay : Delay.t;
}

(* splitmix64-style epoch key: O(1) per epoch, independent streams. *)
let epoch_seed seed epoch =
  Int64.add seed (Int64.mul (Int64.of_int (epoch + 1)) 0x9E3779B97F4A7C15L)

let plan config ~epoch =
  let rng = Rng.create (epoch_seed config.seed epoch) in
  let n = config.base.Runtime.n in
  let t_unit = config.base.Runtime.t_unit in
  let seg = Vtime.to_int config.segment in
  let pct p = Vtime.of_int (seg * p / 100) in
  let workload_seed = Rng.next_int64 rng in
  (* Partition cut early in the segment, healed well before the drain. *)
  let cut_site = Rng.int_in rng ~lo:2 ~hi:n in
  let cut_start = Vtime.of_int (Rng.int_in rng ~lo:(seg * 8 / 100) ~hi:(seg * 25 / 100)) in
  let cut_len =
    let cap = Stdlib.max (Vtime.to_int t_unit) (seg * 15 / 100) in
    Vtime.of_int (Rng.int_in rng ~lo:(Vtime.to_int t_unit) ~hi:cap)
  in
  (* Crash-recover window in the middle stretch; always paired with a
     recovery inside the arrival window so the site rejoins under load. *)
  let crash_site = Rng.int_in rng ~lo:1 ~hi:n in
  let down = Vtime.of_int (Rng.int_in rng ~lo:(seg * 50 / 100) ~hi:(seg * 70 / 100)) in
  let outage = Rng.int_in rng ~lo:(seg * 5 / 100) ~hi:(seg * 22 / 100) in
  let up = Vtime.min (Vtime.add down (Vtime.of_int outage)) (pct 92) in
  let delay_kind = Rng.int rng ~bound:3 in
  if not config.faults then
    {
      workload_seed;
      timeline = config.base.Runtime.timeline;
      crashes = [];
      recoveries = [];
      delay = config.base.Runtime.delay;
    }
  else
    let timeline =
      Partition.make
        ~heals_at:(Vtime.add cut_start cut_len)
        ~group2:(Site_id.set_of_ints [ cut_site ])
        ~starts_at:cut_start ~n ()
    in
    let delay =
      match delay_kind with
      | 0 -> Delay.minimal
      | 1 -> Delay.uniform ~t_max:t_unit
      | _ -> Delay.full ~t_max:t_unit
    in
    {
      workload_seed;
      timeline;
      crashes = [ (Site_id.of_int crash_site, down) ];
      recoveries = [ (Site_id.of_int crash_site, up) ];
      delay;
    }

let epoch_config config ~epoch =
  let p = plan config ~epoch in
  {
    config.base with
    Runtime.seed = p.workload_seed;
    timeline = p.timeline;
    crashes = p.crashes;
    recoveries = p.recoveries;
    delay = p.delay;
    duration = config.segment;
  }

type summary = {
  epochs_run : int;
  ticks : int;  (** virtual time simulated across all epochs *)
  offered : int;
  admitted : int;
  committed : int;
  aborted : int;
  torn : int;
  blocked : int;
  settled : int;
  crashes : int;
  recoveries : int;
  cut_phases : int;
  conserved_epochs : int;
      (** epochs where {!Runtime.atomic} held — the incremental
          conservation check *)
  failures : string list;  (** ["epoch=N"] labels of non-atomic epochs *)
  metrics : Metrics.t;
  snapshot_lines : string list;
}

let conserved s = s.conserved_epochs = s.epochs_run && s.torn = 0

(* The per-epoch summary: the unit the ordered merge folds over. *)
let of_report ~epoch (report : Runtime.report) =
  let atomic = Runtime.atomic report in
  let label = Printf.sprintf "epoch=%d" epoch in
  {
    epochs_run = 1;
    ticks = Vtime.to_int report.Runtime.horizon;
    offered = report.offered;
    admitted = report.admitted;
    committed = report.committed;
    aborted = report.aborted;
    torn = report.torn;
    blocked = report.blocked;
    settled = report.settled;
    crashes = List.length report.config.Runtime.crashes;
    recoveries = List.length report.config.Runtime.recoveries;
    cut_phases = Partition.phase_count report.config.Runtime.timeline;
    conserved_epochs = (if atomic then 1 else 0);
    failures = (if atomic then [] else [ label ]);
    metrics = report.metrics;
    snapshot_lines =
      (match report.snapshots with
      | [] -> []
      | snaps ->
          List.map
            (fun snap ->
              Export.to_string
                (Metrics.snapshot_to_json ~run:label report.metrics snap))
            snaps);
  }

(* Ordered and associative; consumes [a]'s metrics pipeline exactly like
   {!Cluster_sweep.merge}. *)
let merge a b =
  Metrics.merge_into a.metrics b.metrics;
  {
    epochs_run = a.epochs_run + b.epochs_run;
    ticks = a.ticks + b.ticks;
    offered = a.offered + b.offered;
    admitted = a.admitted + b.admitted;
    committed = a.committed + b.committed;
    aborted = a.aborted + b.aborted;
    torn = a.torn + b.torn;
    blocked = a.blocked + b.blocked;
    settled = a.settled + b.settled;
    crashes = a.crashes + b.crashes;
    recoveries = a.recoveries + b.recoveries;
    cut_phases = a.cut_phases + b.cut_phases;
    conserved_epochs = a.conserved_epochs + b.conserved_epochs;
    failures = a.failures @ b.failures;
    metrics = a.metrics;
    snapshot_lines =
      (if b.snapshot_lines == [] then a.snapshot_lines
       else a.snapshot_lines @ b.snapshot_lines);
  }

let eval config scratch epoch =
  of_report ~epoch (Runtime.run ~scratch (epoch_config config ~epoch))

let run ?jobs config =
  if config.epochs < 1 then invalid_arg "Soak.run: epochs must be >= 1";
  if Vtime.to_int config.segment < 10 * Vtime.to_int config.base.Runtime.t_unit
  then invalid_arg "Soak.run: segment must be at least 10T";
  let indices = Array.init config.epochs (fun i -> i) in
  let sequential () =
    let scratch = Runtime.make_scratch () in
    Array.fold_left
      (fun acc epoch ->
        let s = eval config scratch epoch in
        match acc with None -> Some s | Some a -> Some (merge a s))
      None indices
    |> Option.get
  in
  match jobs with
  | Some j when j < 1 -> invalid_arg "Soak.run: jobs must be >= 1"
  | None | Some 1 -> sequential ()
  | Some j ->
      let domains = Stdlib.min j (Commit_par.Pool.default_jobs ()) in
      if domains = 1 then sequential ()
      else
        let chunk =
          Stdlib.max 1
            ((Array.length indices + (2 * domains) - 1) / (2 * domains))
        in
        Commit_par.Pool.with_pool ~domains (fun pool ->
            Commit_par.Pool.map_reduce_scratch pool ~chunk
              ~init:Runtime.make_scratch
              ~f:(fun scratch epoch -> eval config scratch epoch)
              ~merge indices)

let to_json config s =
  Export.Obj
    [
      ("seed", Export.String (Int64.to_string config.seed));
      ("epochs", Export.Int config.epochs);
      ("segment_ticks", Export.Int (Vtime.to_int config.segment));
      ("faults", Export.Bool config.faults);
      ("ticks", Export.Int s.ticks);
      ( "totals",
        Export.Obj
          [
            ("offered", Export.Int s.offered);
            ("admitted", Export.Int s.admitted);
            ("settled", Export.Int s.settled);
            ("committed", Export.Int s.committed);
            ("aborted", Export.Int s.aborted);
            ("torn", Export.Int s.torn);
            ("blocked", Export.Int s.blocked);
          ] );
      ( "fault_plan",
        Export.Obj
          [
            ("crashes", Export.Int s.crashes);
            ("recoveries", Export.Int s.recoveries);
            ("cut_phases", Export.Int s.cut_phases);
          ] );
      ("conserved_epochs", Export.Int s.conserved_epochs);
      ("conserved", Export.Bool (conserved s));
      ("failures", Export.List (List.map (fun l -> Export.String l) s.failures));
      ("metrics", Metrics.to_json s.metrics);
    ]

let pp_summary fmt (config, s) =
  Format.fprintf fmt
    "soak: seed=%Ld epochs=%d segment=%d ticks=%d faults=%b@." config.seed
    s.epochs_run (Vtime.to_int config.segment) s.ticks config.faults;
  Format.fprintf fmt
    "  offered=%d admitted=%d settled=%d committed=%d aborted=%d torn=%d \
     blocked=%d@."
    s.offered s.admitted s.settled s.committed s.aborted s.torn s.blocked;
  Format.fprintf fmt
    "  injected: crashes=%d recoveries=%d cut-phases=%d@." s.crashes
    s.recoveries s.cut_phases;
  Format.fprintf fmt "  conserved: %d/%d epochs%s@." s.conserved_epochs
    s.epochs_run
    (if conserved s then "" else "  ** CONSERVATION FAILURE **");
  List.iter
    (fun label -> Format.fprintf fmt "  not conserved: %s@." label)
    s.failures
