module Export = Commit_checker.Export

type txn = {
  contributions : (Site_id.t * int) list;
  mutable decisions : (Site_id.t * Types.decision) list;
  mutable settled : bool;
}

type t = {
  n : int;
  txns : (int, txn) Hashtbl.t;
  mutable open_count : int;
  mutable settled_count : int;
  mutable torn : int list;  (* descending insertion; reversed on read *)
  mutable breaches : int;
  mutable applied : int;
  mutable atomic_expected : int;
  mutable dead : Site_id.Set.t;  (* crash-stopped; exempt from settling *)
}

let create ~n () =
  if n < 2 then invalid_arg "Auditor.create: need at least two sites";
  {
    n;
    txns = Hashtbl.create 128;
    open_count = 0;
    settled_count = 0;
    torn = [];
    breaches = 0;
    applied = 0;
    atomic_expected = 0;
    dead = Site_id.Set.empty;
  }

let begin_txn t ~tid ~contributions =
  if Hashtbl.mem t.txns tid then
    invalid_arg (Printf.sprintf "Auditor.begin_txn: duplicate tid %d" tid);
  Hashtbl.add t.txns tid { contributions; decisions = []; settled = false };
  t.open_count <- t.open_count + 1

let contribution txn site =
  match List.assoc_opt site txn.contributions with Some c -> c | None -> 0

let settle t tid txn =
  txn.settled <- true;
  t.open_count <- t.open_count - 1;
  t.settled_count <- t.settled_count + 1;
  let all d =
    List.for_all (fun (_, d') -> Types.equal_decision d d') txn.decisions
  in
  let applied_here =
    List.fold_left
      (fun acc (site, d) ->
        match d with
        | Types.Commit -> acc + contribution txn site
        | Types.Abort -> acc)
      0 txn.decisions
  in
  let full =
    List.fold_left (fun acc (_, c) -> acc + c) 0 txn.contributions
  in
  if all Types.Commit then t.atomic_expected <- t.atomic_expected + full
  else if all Types.Abort then ()
  else begin
    (* torn: agreement violated; the partial deposit is the money bug *)
    t.torn <- tid :: t.torn;
    if applied_here <> 0 && applied_here <> full then
      t.breaches <- t.breaches + 1
  end

(* A transaction settles when every live site has decided; decisions a
   crash-stopped site never makes cannot be waited for. *)
let live_complete t txn =
  List.for_all
    (fun s -> Site_id.Set.mem s t.dead || List.mem_assoc s txn.decisions)
    (Site_id.all ~n:t.n)

let record t ~tid ~site decision =
  match Hashtbl.find_opt t.txns tid with
  | None -> invalid_arg (Printf.sprintf "Auditor.record: unknown tid %d" tid)
  | Some txn -> (
      match List.assoc_opt site txn.decisions with
      | Some prior when Types.equal_decision prior decision -> ()
      | Some _ ->
          invalid_arg
            (Printf.sprintf "Auditor.record: t%d decision flip at site %d" tid
               (Site_id.to_int site))
      | None ->
          txn.decisions <- (site, decision) :: txn.decisions;
          (match decision with
          | Types.Commit -> t.applied <- t.applied + contribution txn site
          | Types.Abort -> ());
          if live_complete t txn && not txn.settled then settle t tid txn)

let mark_dead t ~site =
  if not (Site_id.Set.mem site t.dead) then begin
    t.dead <- Site_id.Set.add site t.dead;
    (* Open transactions may already be complete over the survivors.
       Counters are order-independent and [torn] is sorted on read, so
       the hashtable's iteration order does not leak into results. *)
    Hashtbl.iter
      (fun tid txn ->
        if (not txn.settled) && txn.decisions <> [] && live_complete t txn
        then settle t tid txn)
      t.txns
  end

let mark_recovered t ~site =
  (* Settled transactions stay settled; open ones now require this
     site's decision again before they are judged complete (the runtime
     supplies it via the recovery rule). *)
  t.dead <- Site_id.Set.remove site t.dead

let open_txns t = t.open_count

let settled t = t.settled_count

let torn_tids t = List.sort Int.compare t.torn

let agreement_violations t = List.length t.torn

let conservation_breaches t = t.breaches

let applied_total t = t.applied

let atomic_expected_total t = t.atomic_expected

let check t =
  match (t.torn, t.breaches) with
  | [], 0 -> Ok ()
  | [], b -> Error (Printf.sprintf "%d conservation breach(es)" b)
  | torn, b ->
      Error
        (Printf.sprintf
           "%d torn transaction(s) (first: t%d), %d conservation breach(es)"
           (List.length torn)
           (List.fold_left Stdlib.min max_int torn)
           b)

let to_json t =
  Export.Obj
    [
      ("settled", Export.Int (settled t));
      ("open", Export.Int (open_txns t));
      ("agreement_violations", Export.Int (agreement_violations t));
      ("conservation_breaches", Export.Int (conservation_breaches t));
      ("torn_tids", Export.List (List.map (fun i -> Export.Int i) (torn_tids t)));
      ("applied_total", Export.Int (applied_total t));
      ("atomic_expected_total", Export.Int (atomic_expected_total t));
    ]
