(** The cluster's metrics pipeline.

    Three instrument kinds, all bounded-memory and all drained to
    deterministic JSON at the end of a run (or at any instant — reading
    never perturbs the pipeline):

    - {e counters}: monotonic event counts ("committed", "probes", FACT
      1/2 decision tags, ...);
    - {e time series}: event counts bucketed by virtual time — the
      throughput timelines of the cluster example and bench;
    - {e histograms}: latency distributions held as
      {!Commit_checker.Stats.Acc} streaming accumulators, so a
      million-transaction run retains buckets, not samples;
    - {e gauges}: point-in-time samples (queue depths, live sites) —
      {!set_gauge} replaces rather than accumulates.

    Instruments are created on first use; export orders everything by
    name, so the JSON of two identical runs is byte-identical.

    For streaming telemetry, a {!cursor} slices the pipeline into
    windowed delta {!snapshot}s whose sum rebuilds the final state
    exactly (counters and series cells are sums, histograms a merge
    monoid, gauges last-write-wins). *)

type t

val create : ?bucket:Vtime.t -> t_unit:Vtime.t -> unit -> t
(** [bucket] is the time-series bucket width; default [10 * t_unit]
    (the 10T columns of the cluster-life timeline). *)

val t_unit : t -> Vtime.t

val bucket_ticks : t -> Vtime.t

val incr : t -> string -> unit

val add : t -> string -> int -> unit
(** @raise Invalid_argument on a negative increment (counters are
    monotonic). *)

val counter : t -> string -> int
(** 0 for a never-incremented counter. *)

val counters : t -> (string * int) list
(** Name-sorted. *)

val set_gauge : t -> string -> int -> unit
(** Replace a gauge's value (negative values allowed). *)

val gauge : t -> string -> int
(** 0 for a never-set gauge. *)

val gauges : t -> (string * int) list
(** Name-sorted. *)

val mark : t -> at:Vtime.t -> string -> unit
(** Count one event into the series' bucket [at / bucket]. *)

val bucket_of : t -> Vtime.t -> int

val series : t -> string -> (int * int) list
(** [(bucket index, count)] pairs, bucket-sorted; empty buckets are
    omitted. *)

val series_names : t -> string list

val observe : t -> string -> int -> unit
(** Add one sample to a histogram. *)

val histogram : t -> string -> Commit_checker.Stats.t option

val histogram_acc : t -> string -> Commit_checker.Stats.Acc.acc
(** The raw streaming accumulator ({!Commit_checker.Stats.Acc.empty}
    for an unknown name), for cross-pipeline merging. *)

val merge_histogram : t -> string -> Commit_checker.Stats.Acc.acc -> unit
(** Fold a pre-accumulated shard into a histogram (the
    merge-vs-batch-equivalent path). *)

val merge_into : t -> t -> unit
(** [merge_into dst src] folds every counter, series bucket and
    histogram of [src] into [dst] — the exact merge monoid: the result
    equals recording every event into one pipeline, in any grouping.
    Gauges are summed (sweep partials are disjoint runs, so the merged
    value is the total of their final samples).  [src] is not modified.
    @raise Invalid_argument if the bucket widths differ. *)

(** {2 Windowed delta snapshots} *)

type cursor
(** Emission state for one snapshot stream: counter values at the last
    cut, the first series bucket not yet closed, and the per-window
    histogram accumulators' drain point. *)

type snapshot = {
  snap_seq : int;
  snap_since : Vtime.t;  (** exclusive window start: the previous cut *)
  snap_upto : Vtime.t;  (** inclusive window end *)
  snap_final : bool;
  snap_counters : (string * int) list;  (** deltas since the last cut *)
  snap_gauges : (string * int) list;  (** sampled at the cut *)
  snap_series : (string * (int * int) list) list;
      (** series buckets closed by this cut *)
  snap_hists : (string * Commit_checker.Stats.Acc.acc) list;
      (** histogram samples of this window only *)
}

val create_cursor : t -> cursor
(** Switches the pipeline to windowed mode (per-window histogram
    accumulators are maintained from here on).
    @raise Invalid_argument if anything was already recorded — windows
    must cover the whole run. *)

val snapshot : t -> cursor -> at:Vtime.t -> final:bool -> snapshot
(** Cut the window ending at [at] (calls must use non-decreasing
    times).  A counter appears the first time it exists and whenever it
    moved, so even a zero-valued counter reaches a merged rebuild; a
    series bucket is emitted once closed (strictly before [at]'s
    bucket), or unconditionally on the [final] cut; window histograms
    drain.  All lists name-sorted: identical runs yield byte-identical
    streams. *)

val merge_snapshot : t -> snapshot -> unit
(** Fold one window back in.  Replaying a run's snapshots in stream
    order onto a fresh pipeline reproduces the run's final metrics
    exactly. *)

val snapshot_to_json : ?run:string -> t -> snapshot -> Commit_checker.Export.json
(** One flat JSON record (the JSONL line of [--metrics]): [seq],
    [t_unit], [bucket_ticks], [since]/[upto]/[final], then [counters],
    [gauges], [series] and [histograms] objects.  [run] prefixes the
    record with a run label (sweep streams). *)

val to_json : t -> Commit_checker.Export.json
(** [{"counters": {...}, "gauges": {...}, "series": {...},
    "histograms": {...}}], every object name-sorted, series as
    [[bucket, count]] pairs. *)
