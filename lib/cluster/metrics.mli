(** The cluster's metrics pipeline.

    Three instrument kinds, all bounded-memory and all drained to
    deterministic JSON at the end of a run (or at any instant — reading
    never perturbs the pipeline):

    - {e counters}: monotonic event counts ("committed", "probes", FACT
      1/2 decision tags, ...);
    - {e time series}: event counts bucketed by virtual time — the
      throughput timelines of the cluster example and bench;
    - {e histograms}: latency distributions held as
      {!Commit_checker.Stats.Acc} streaming accumulators, so a
      million-transaction run retains buckets, not samples.

    Instruments are created on first use; export orders everything by
    name, so the JSON of two identical runs is byte-identical. *)

type t

val create : ?bucket:Vtime.t -> t_unit:Vtime.t -> unit -> t
(** [bucket] is the time-series bucket width; default [10 * t_unit]
    (the 10T columns of the cluster-life timeline). *)

val t_unit : t -> Vtime.t

val bucket_ticks : t -> Vtime.t

val incr : t -> string -> unit

val add : t -> string -> int -> unit
(** @raise Invalid_argument on a negative increment (counters are
    monotonic). *)

val counter : t -> string -> int
(** 0 for a never-incremented counter. *)

val counters : t -> (string * int) list
(** Name-sorted. *)

val mark : t -> at:Vtime.t -> string -> unit
(** Count one event into the series' bucket [at / bucket]. *)

val bucket_of : t -> Vtime.t -> int

val series : t -> string -> (int * int) list
(** [(bucket index, count)] pairs, bucket-sorted; empty buckets are
    omitted. *)

val series_names : t -> string list

val observe : t -> string -> int -> unit
(** Add one sample to a histogram. *)

val histogram : t -> string -> Commit_checker.Stats.t option

val histogram_acc : t -> string -> Commit_checker.Stats.Acc.acc
(** The raw streaming accumulator ({!Commit_checker.Stats.Acc.empty}
    for an unknown name), for cross-pipeline merging. *)

val merge_histogram : t -> string -> Commit_checker.Stats.Acc.acc -> unit
(** Fold a pre-accumulated shard into a histogram (the
    merge-vs-batch-equivalent path). *)

val merge_into : t -> t -> unit
(** [merge_into dst src] folds every counter, series bucket and
    histogram of [src] into [dst] — the exact merge monoid: the result
    equals recording every event into one pipeline, in any grouping.
    [src] is not modified.
    @raise Invalid_argument if the bucket widths differ. *)

val to_json : t -> Commit_checker.Export.json
(** [{"counters": {...}, "series": {...}, "histograms": {...}}], every
    object name-sorted, series as [[bucket, count]] pairs. *)
