(** Domain-parallel sweeps over cluster scenarios.

    Where {!Commit_checker.Sweep} fans one-transaction scenarios over a
    grid, a cluster sweep fans whole {!Runtime} runs: a grid of seeds ×
    cut/heal timelines × scheduler policies, one independent runtime
    (one engine, one vtime, one network) per task, merged into a single
    summary via the exact merge monoids — counts add, and every run's
    {!Metrics} pipeline (counters, series, streaming histograms) folds
    through {!Metrics.merge_into} / {!Commit_checker.Stats.Acc.merge}.

    The merge is associative and applied in task order, so the summary
    — including {!to_json} byte-for-byte — is independent of [jobs]. *)

type grid = {
  base : Runtime.config;
      (** every task starts from this config; the axes below override
          [seed], [timeline], [policy] and [protocol] *)
  seeds : int64 list;
  timelines : (string * Partition.t) list;  (** label × timeline *)
  policies : Scheduler.policy list;
  protocols : (string * Site.packed) list;
      (** label × protocol; [[]] means "just [base.protocol]" and keeps
          the protocol name out of the task labels *)
  faults : (string * Fault.spec list) list;
      (** label × crash-recover schedule (see {!Fault.split}); [[]]
          means "just [base.crashes]/[base.recoveries]" and keeps the
          fault label out of the task labels *)
}

val tasks : grid -> (Label.t * Runtime.config) list
(** The grid flattened in deterministic task order (timelines outer,
    then policies, then protocols, then faults, then seeds), each with
    a stable ["timeline/policy(/protocol)(/fault)/seed=N"] label.
    Labels are lazy — a clean run never renders one. *)

type summary = {
  runs : int;
  offered : int;
  admitted : int;
  rejected : int;
  starved : int;
  settled : int;
  committed : int;
  aborted : int;
  torn : int;
  blocked : int;
  termination_invocations : int;
  probes : int;
  atomic_runs : int;  (** runs where {!Runtime.atomic} held *)
  clean_runs : int;  (** atomic {e and} nothing blocked at the horizon *)
  failures : string list;
      (** labels of the first non-clean runs, in task order *)
  metrics : Metrics.t;
      (** the exact merge of every run's pipeline — latencies, queue
          waits, decision-reason counters, bucketed throughput series *)
  snapshot_lines : string list;
      (** one rendered JSONL record per windowed telemetry cut, tagged
          with the run's label via the ["run"] field, concatenated in
          task order; empty unless [base.snapshot_every] is set.  The
          merge is an ordered append, so the stream is byte-identical
          for every [jobs]. *)
}

val run : ?keep:int -> ?jobs:int -> grid -> summary
(** Runs every task and merges.  [keep] (default 5) caps [failures];
    [jobs] (default 1 = sequential) fans tasks across a
    {!Commit_par.Pool}, clamped to [Pool.default_jobs ()] effective
    executors (the summary is identical for every [jobs], so the flag
    is purely a performance knob).  Every executor reuses one
    {!Runtime.scratch} across its runs.
    @raise Invalid_argument if the grid is empty or [jobs < 1]. *)

val of_report : label:Label.t -> Runtime.report -> summary
(** The summary of one run: the unit the parallel merge folds over
    ([label] is rendered only when the run is not clean). *)

val merge : keep:int -> summary -> summary -> summary
(** The exact merge the parallel path folds with: counts add, metrics
    pipelines fold through {!Metrics.merge_into} (consuming the left
    argument's pipeline), and [failures] concatenate in task order
    truncated to [keep].  Associative. *)

val clean : summary -> bool
(** [clean_runs = runs]. *)

val to_json : summary -> Commit_checker.Export.json
(** Deterministic (fixed field order, name-sorted metric objects) and
    independent of [jobs]: same grid, byte-identical document. *)

val pp_summary : Format.formatter -> summary -> unit
