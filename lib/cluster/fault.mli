(** Crash-recover schedules as the CLI sees them, plus the validation
    the CLI applies before handing them to {!Runtime}.

    A spec is one [SITE:DOWN] (crash-stop) or [SITE:DOWN..UP]
    (crash-recover) window, instants in ticks. *)

type spec = { site : int; down : int; up : int option }

val validate : n:int -> ?horizon:int -> spec list -> (unit, string) result
(** First violation wins, in schedule order: site out of range 1..[n],
    duplicate site, negative or past-[horizon] crash instant,
    [up <= down], past-[horizon] recover instant.  [horizon] is the
    run's full extent in ticks (duration + drain); omit it when the
    horizon is not known at parse time. *)

val split :
  spec list -> (Site_id.t * Vtime.t) list * (Site_id.t * Vtime.t) list
(** [(crashes, recoveries)] in the shape {!Runtime.config} wants; every
    spec contributes a crash, only [..UP] specs a recovery. *)
