(* Span -> histogram bridge: stream closed [Obs] spans into per-name
   [Metrics] histograms (phase / state / probe-round latency
   distributions) without materialising a trace-event export.

   The hot path is int-only: closed spans arrive from
   [Obs.fold_closed_spans] as interned ids plus a duration (the packed
   records carry the begin instant on the end record), and the window
   accumulators live in an int-keyed table.  Metric-name strings are
   built once per distinct (name, cat) pair, at flush time, then
   memoised.  The bridge only exists when the recorder is enabled, so
   trace-off runs allocate nothing. *)

module Stats = Commit_checker.Stats

type t = {
  obs : Obs.t;
  mutable cursor : int;  (* obs records consumed so far *)
  accs : (int, Stats.Acc.acc ref) Hashtbl.t;  (* packed (name, cat) key *)
  names : (int, string) Hashtbl.t;  (* packed key -> metric name memo *)
}

let create obs =
  { obs; cursor = 0; accs = Hashtbl.create 32; names = Hashtbl.create 32 }

(* Interned ids are small (one per distinct span name or category per
   run), so 20 bits for the category leave ample room for the name. *)
let key ~name ~cat = (name lsl 20) lor cat

let poll t =
  t.cursor <-
    Obs.fold_closed_spans t.obs ~from:t.cursor (fun ~name ~cat ~dur ->
        let k = key ~name ~cat in
        let cell =
          match Hashtbl.find_opt t.accs k with
          | Some cell -> cell
          | None ->
              let cell = ref Stats.Acc.empty in
              Hashtbl.add t.accs k cell;
              cell
        in
        cell := Stats.Acc.add !cell dur)

let metric_name t k =
  match Hashtbl.find_opt t.names k with
  | Some s -> s
  | None ->
      let s =
        "span."
        ^ Obs.name_string t.obs (k land 0xFFFFF)
        ^ "."
        ^ Obs.name_string t.obs (k lsr 20)
      in
      Hashtbl.add t.names k s;
      s

(* Drain newly closed spans and merge every window accumulator into
   [metrics]; called at each snapshot cut and once at the end of the
   run.  Table iteration order does not matter: each merge lands in its
   own per-name histogram and [Metrics] serialises key-sorted. *)
let flush t metrics =
  poll t;
  Hashtbl.iter
    (fun k cell ->
      if Stats.Acc.count !cell > 0 then begin
        Metrics.merge_histogram metrics (metric_name t k) !cell;
        cell := Stats.Acc.empty
      end)
    t.accs
