module Stats = Commit_checker.Stats
module Export = Commit_checker.Export

type grid = {
  base : Runtime.config;
  seeds : int64 list;
  timelines : (string * Partition.t) list;
  policies : Scheduler.policy list;
  protocols : (string * Site.packed) list;
  faults : (string * Fault.spec list) list;
}

(* Labels are lazy ({!Label.Dynamic}): a clean run never renders its
   label, so a sweep of thousands of runtimes does no sprintf work
   unless something actually fails (or a caller forces them for
   display). *)
let tasks grid =
  let protocols =
    match grid.protocols with
    | [] -> [ (None, grid.base.Runtime.protocol) ]
    | ps -> List.map (fun (name, p) -> (Some name, p)) ps
  in
  let faults =
    match grid.faults with
    | [] ->
        [ (None, (grid.base.Runtime.crashes, grid.base.Runtime.recoveries)) ]
    | fs -> List.map (fun (name, specs) -> (Some name, Fault.split specs)) fs
  in
  List.concat_map
    (fun (timeline_label, timeline) ->
      List.concat_map
        (fun policy ->
          List.concat_map
            (fun (protocol_label, protocol) ->
              List.concat_map
                (fun (fault_label, (crashes, recoveries)) ->
                  List.map
                    (fun seed ->
                      let label =
                        Label.Dynamic
                          (fun () ->
                            let opt = function
                              | None -> ""
                              | Some s -> "/" ^ s
                            in
                            Printf.sprintf "%s/%s%s%s/seed=%Ld" timeline_label
                              (Scheduler.policy_name policy)
                              (opt protocol_label) (opt fault_label) seed)
                      in
                      ( label,
                        {
                          grid.base with
                          Runtime.timeline;
                          policy;
                          protocol;
                          crashes;
                          recoveries;
                          seed;
                        } ))
                    grid.seeds)
                faults)
            protocols)
        grid.policies)
    grid.timelines

type summary = {
  runs : int;
  offered : int;
  admitted : int;
  rejected : int;
  starved : int;
  settled : int;
  committed : int;
  aborted : int;
  torn : int;
  blocked : int;
  termination_invocations : int;
  probes : int;
  atomic_runs : int;
  clean_runs : int;
  failures : string list;
  metrics : Metrics.t;
  snapshot_lines : string list;
}

(* The summary of one run: the unit the merge folds over.  The run's
   own metrics pipeline is adopted wholesale (the run is finished and
   owns it exclusively). *)
let of_report ~label (report : Runtime.report) =
  let atomic = Runtime.atomic report in
  let clean = atomic && report.blocked = 0 in
  {
    runs = 1;
    offered = report.offered;
    admitted = report.admitted;
    rejected = report.rejected;
    starved = report.starved;
    settled = report.settled;
    committed = report.committed;
    aborted = report.aborted;
    torn = report.torn;
    blocked = report.blocked;
    termination_invocations = report.termination_invocations;
    probes = report.probes;
    atomic_runs = (if atomic then 1 else 0);
    clean_runs = (if clean then 1 else 0);
    failures = (if clean then [] else [ Label.force label ]);
    metrics = report.metrics;
    snapshot_lines =
      (match report.snapshots with
      | [] -> []
      | snaps ->
          let run = Label.force label in
          List.map
            (fun snap ->
              Export.to_string
                (Metrics.snapshot_to_json ~run report.metrics snap))
            snaps);
  }

(* First [keep] of [a @ b] in O(keep) work — same shape as
   [Sweep.cap_append]: no full-length scans, and an at-cap left list is
   returned physically unchanged. *)
let rec prefix budget l =
  if budget = 0 then []
  else match l with [] -> [] | x :: rest -> x :: prefix (budget - 1) rest

let cap_append ~keep a b =
  let rec len_capped n l =
    if n > keep then n
    else match l with [] -> n | _ :: rest -> len_capped (n + 1) rest
  in
  let la = len_capped 0 a in
  if la > keep then prefix keep a
  else if la = keep || b == [] then a
  else match prefix (keep - la) b with [] -> a | extra -> a @ extra

(* Associative; consumes [a]'s metrics pipeline (each partial is owned
   by exactly one domain at a time — see Pool.map_reduce). *)
let merge ~keep a b =
  Metrics.merge_into a.metrics b.metrics;
  {
    runs = a.runs + b.runs;
    offered = a.offered + b.offered;
    admitted = a.admitted + b.admitted;
    rejected = a.rejected + b.rejected;
    starved = a.starved + b.starved;
    settled = a.settled + b.settled;
    committed = a.committed + b.committed;
    aborted = a.aborted + b.aborted;
    torn = a.torn + b.torn;
    blocked = a.blocked + b.blocked;
    termination_invocations =
      a.termination_invocations + b.termination_invocations;
    probes = a.probes + b.probes;
    atomic_runs = a.atomic_runs + b.atomic_runs;
    clean_runs = a.clean_runs + b.clean_runs;
    failures = cap_append ~keep a.failures b.failures;
    metrics = a.metrics;
    snapshot_lines =
      (if b.snapshot_lines == [] then a.snapshot_lines
       else a.snapshot_lines @ b.snapshot_lines);
  }

let eval scratch (label, config) =
  of_report ~label (Runtime.run ~scratch config)

let run ?(keep = 5) ?jobs grid =
  let tasks = tasks grid in
  if tasks = [] then invalid_arg "Cluster_sweep.run: empty grid";
  let sequential () =
    let scratch = Runtime.make_scratch () in
    match List.map (eval scratch) tasks with
    | [] -> assert false
    | first :: rest -> List.fold_left (merge ~keep) first rest
  in
  match jobs with
  | Some j when j < 1 -> invalid_arg "Cluster_sweep.run: jobs must be >= 1"
  | None | Some 1 -> sequential ()
  | Some j ->
      (* Clamp to the recommended domain count — the summary is
         identical for every [jobs], so the flag is purely a
         performance knob (see Sweep.run). *)
      let domains = Stdlib.min j (Commit_par.Pool.default_jobs ()) in
      if domains = 1 then sequential ()
      else
        let tasks = Array.of_list tasks in
        (* One runtime per task is already coarse; chunk just finely
           enough to balance uneven run costs across the domains. *)
        let chunk =
          Stdlib.max 1 ((Array.length tasks + (2 * domains) - 1) / (2 * domains))
        in
        Commit_par.Pool.with_pool ~domains (fun pool ->
            Commit_par.Pool.map_reduce_scratch pool ~chunk
              ~init:Runtime.make_scratch ~f:eval ~merge:(merge ~keep) tasks)

let clean s = s.clean_runs = s.runs

let to_json s =
  let stats_json name =
    match Metrics.histogram s.metrics name with
    | Some stats -> Export.of_stats stats
    | None -> Export.Null
  in
  Export.Obj
    [
      ("runs", Export.Int s.runs);
      ( "totals",
        Export.Obj
          [
            ("offered", Export.Int s.offered);
            ("admitted", Export.Int s.admitted);
            ("rejected", Export.Int s.rejected);
            ("starved", Export.Int s.starved);
            ("settled", Export.Int s.settled);
            ("committed", Export.Int s.committed);
            ("aborted", Export.Int s.aborted);
            ("torn", Export.Int s.torn);
            ("blocked", Export.Int s.blocked);
            ( "termination_invocations",
              Export.Int s.termination_invocations );
            ("probes", Export.Int s.probes);
          ] );
      ("atomic_runs", Export.Int s.atomic_runs);
      ("clean_runs", Export.Int s.clean_runs);
      ("clean", Export.Bool (clean s));
      ("failures", Export.List (List.map (fun l -> Export.String l) s.failures));
      ("latency_commit", stats_json "latency.commit");
      ("queue_wait", stats_json "wait.queue");
      ("metrics", Metrics.to_json s.metrics);
    ]

let pp_summary fmt s =
  Format.fprintf fmt
    "cluster sweep: runs=%d offered=%d admitted=%d committed=%d aborted=%d \
     torn=%d blocked=%d@."
    s.runs s.offered s.admitted s.committed s.aborted s.torn s.blocked;
  Format.fprintf fmt
    "  rejected=%d starved=%d terminations=%d probes=%d atomic=%d/%d clean=%d/%d@."
    s.rejected s.starved s.termination_invocations s.probes s.atomic_runs
    s.runs s.clean_runs s.runs;
  (match Metrics.histogram s.metrics "latency.commit" with
  | Some stats ->
      Format.fprintf fmt "  commit latency: %a@."
        (Stats.pp_in_t ~unit_t:(Metrics.t_unit s.metrics))
        stats
  | None -> ());
  List.iter
    (fun label -> Format.fprintf fmt "  not clean: %s@." label)
    s.failures
