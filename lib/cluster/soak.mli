(** Deterministic soak runs: millions of ticks of cluster time under a
    seed-derived randomized fault schedule.

    A soak decomposes into [epochs] independent {!Runtime} runs of
    [segment] ticks each.  Epoch [i] derives everything from
    [(seed, i)] alone: its workload seed, a partition cut-and-heal
    early in the segment, a crash-recover window in the middle stretch
    (the site always rejoins under load), and a message-delay model
    drawn from minimal/uniform/full.  Every random draw is made
    unconditionally, so a faults-off soak over the same seed runs the
    identical arrival process — the bench's "faults on vs. off" legs
    differ only in the injected schedule.

    Epochs merge in index order through the exact metrics monoid
    (snapshot lines tagged ["epoch=N"] concatenate in epoch order), so
    the summary — and {!to_json} byte-for-byte — is identical for every
    [jobs] value and every invocation.

    Conservation is checked incrementally: each epoch's {!Runtime.atomic}
    verdict lands in [conserved_epochs] as the epoch finishes, rather
    than one audit over the whole soak at the end. *)

type config = {
  base : Runtime.config;
      (** per-epoch template; the soak overrides [seed], [timeline],
          [crashes], [recoveries], [delay] and [duration] *)
  seed : int64;  (** the soak seed every epoch derives from *)
  epochs : int;
  segment : Vtime.t;  (** per-epoch arrival window, in ticks *)
  faults : bool;  (** inject the derived fault schedule? *)
}

val default_config : ?base:Runtime.config -> unit -> config
(** Seed 1, 16 epochs of 200T each (3.2M ticks on the default 1000-tick
    T), faults on. *)

val epoch_config : config -> epoch:int -> Runtime.config
(** The fully-derived runtime config of one epoch — exposed so tests
    can replay a single epoch in isolation. *)

type summary = {
  epochs_run : int;
  ticks : int;  (** virtual time simulated across all epochs *)
  offered : int;
  admitted : int;
  committed : int;
  aborted : int;
  torn : int;
  blocked : int;
  settled : int;
  crashes : int;  (** injected crash instants across the soak *)
  recoveries : int;  (** injected recover instants *)
  cut_phases : int;  (** injected partition phases *)
  conserved_epochs : int;
      (** epochs where {!Runtime.atomic} held — the incremental
          conservation check *)
  failures : string list;  (** ["epoch=N"] labels of non-atomic epochs *)
  metrics : Metrics.t;  (** the exact merge of every epoch's pipeline *)
  snapshot_lines : string list;
      (** rendered JSONL telemetry, tagged ["epoch=N"], in epoch order;
          empty unless [base.snapshot_every] is set *)
}

val conserved : summary -> bool
(** Every epoch atomic and no torn transactions anywhere — the soak's
    exit gate. *)

val run : ?jobs:int -> config -> summary
(** Runs every epoch and merges in index order.  [jobs] (default 1)
    fans epochs across a {!Commit_par.Pool} clamped to
    [Pool.default_jobs ()]; the summary is identical for every value.
    @raise Invalid_argument if [epochs < 1], [segment < 10T] or
    [jobs < 1]. *)

val merge : summary -> summary -> summary
(** The ordered associative merge the parallel path folds with
    (consumes the left pipeline, like {!Cluster_sweep.merge}). *)

val of_report : epoch:int -> Runtime.report -> summary
(** One epoch's summary: the unit the merge folds over. *)

val to_json : config -> summary -> Commit_checker.Export.json
(** Deterministic (fixed field order, name-sorted metric objects) and
    independent of [jobs]: same config, byte-identical document. *)

val pp_summary : Format.formatter -> config * summary -> unit
