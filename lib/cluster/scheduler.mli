(** The coordinator scheduler: admission control, a bounded in-flight
    window, and per-transaction master placement.

    The runtime offers every arriving transaction to the scheduler.  At
    most [window] transactions run concurrently — the knob that turns a
    blocked commit protocol into a measurable outage: each transaction a
    partition strands occupies a window slot until it decides, and 2PC
    never decides, so the window clogs and the queue overflows.  Beyond
    the window, up to [queue_limit] transactions wait in FIFO order;
    anything past that is rejected (load shedding).

    Master placement is per-transaction, under one of three policies:

    - {!Fixed_master}: site 1 coordinates everything (the paper's
      convention, and the baseline);
    - {!Round_robin}: coordinators rotate over all sites, spreading the
      master role — the multi-shot generalisation;
    - {!Partition_aware}: rotate, but while a partition is active pick
      only sites in the master-side cell, so a new transaction's
      coordinator is never marooned in G2 (its slaves across the
      boundary still force the termination protocol, but the
      coordinator's own group is the big one).

    Optionally ({!create}[ ~pause_during_cut:true]) the scheduler
    defers {e all} admissions while a partition is active — arrivals
    queue up and drain after the heal, trading partition-window
    goodput for zero termination-protocol work. *)

type policy = Fixed_master | Round_robin | Partition_aware

val policy_of_string : string -> (policy, string) result

val policy_name : policy -> string

type 'a t

val create :
  ?policy:policy ->
  ?queue_limit:int ->
  ?pause_during_cut:bool ->
  window:int ->
  n:int ->
  unit ->
  'a t
(** Defaults: [policy = Partition_aware], [queue_limit = max_int],
    [pause_during_cut = false].
    @raise Invalid_argument if [window < 1] or [n < 2]. *)

val submit :
  'a t ->
  ?alive:(Site_id.t -> bool) ->
  timeline:Partition.t ->
  now:Vtime.t ->
  'a ->
  [ `Admit of Site_id.t | `Enqueued | `Rejected ]
(** Offer one transaction.  [`Admit master] claims a window slot and
    names the coordinator; [`Enqueued] parks it; [`Rejected] sheds it
    (queue full).  [alive] (default: everyone) filters the rotation
    candidates so crash-stopped sites are never picked as coordinators
    (Fixed_master ignores it — a fixed dead master is the scenario the
    policy is meant to expose). *)

val complete : 'a t -> unit
(** Release one window slot (a transaction settled).
    @raise Invalid_argument if nothing is in flight. *)

val next :
  'a t ->
  ?alive:(Site_id.t -> bool) ->
  timeline:Partition.t ->
  now:Vtime.t ->
  unit ->
  ('a * Site_id.t) option
(** Pop the longest-queued transaction if a window slot is free (and
    admissions are not paused), claiming the slot. *)

val in_flight : 'a t -> int

val queued : 'a t -> int

val admitted : 'a t -> int
(** Total admissions (window slots ever claimed). *)

val rejected : 'a t -> int

val window : 'a t -> int
